// Package idtd implements the iDTD algorithm of Section 6 of the paper:
// 2T-INF automaton inference followed by rewrite, with repair rules that
// add a minimal set of edges to the automaton whenever rewrite gets stuck,
// so that a SORE describing a (as small as possible) superset of the sample
// language is always produced.
//
// The two repair rules are enable-disjunction, which equalizes the
// predecessor and successor sets of a candidate pair of states so the
// disjunction rule can merge them, and enable-optional, which adds the
// bypass edges around a state so the optional rule applies. Both carry the
// fuzziness parameter k; following Algorithm 2, k escalates when no repair
// applies at the current level. The paper's implementation fixes k = 2 and
// restricts enable-disjunction to pairs; this implementation does the same
// by default but keeps escalating k when stuck, which (together with a
// universal-disjunction fallback) makes inference total.
package idtd

import (
	"context"

	"dtdinfer/internal/budget"
	"dtdinfer/internal/gfa"
	"dtdinfer/internal/regex"
	smp "dtdinfer/internal/sample"
	"dtdinfer/internal/soa"
)

// RepairPolicy selects how a repair candidate is chosen when rewrite is
// stuck. The choice is an implementation freedom the paper leaves open
// ("apply one repair rule"); the policies exist for the ablation study in
// the benchmark harness.
type RepairPolicy int

const (
	// PolicyBalanced (the default) repairs mutually interconnected
	// disjunction pairs first — the repeated-disjunction signature of
	// Figure 2 — and otherwise picks the cheaper of a similarity
	// disjunction and an enable-optional plan, preferring optional on
	// ties to preserve order information. This reproduces the paper's
	// reported results on both Figure 2 and Table 2.
	PolicyBalanced RepairPolicy = iota
	// PolicyDisjunctionFirst always prefers enable-disjunction over
	// enable-optional, the literal reading of "Rule 1 and 2 are tried in
	// this order".
	PolicyDisjunctionFirst
	// PolicyOptionalFirst always prefers enable-optional.
	PolicyOptionalFirst
)

// Options configure iDTD.
type Options struct {
	// K is the initial fuzziness of the repair rules. The paper uses 2.
	K int
	// Policy selects the repair-candidate policy; see RepairPolicy.
	Policy RepairPolicy
	// MaxK bounds the escalation of k; 0 means the number of automaton
	// states, which in practice always suffices before the fallback.
	MaxK int
	// MaxRepairs bounds the total number of repair applications before the
	// universal fallback; 0 means 4·n² for an n-state automaton.
	MaxRepairs int
	// NoiseThreshold, when positive, enables the noise-aware variant of
	// Section 9: whenever rewrite is stuck, an edge whose support is at
	// most the threshold is dropped (in increasing support order) before
	// repairs are considered.
	NoiseThreshold int
	// Trace records every rewrite-rule application into Result.Trace,
	// reproducing derivations like the paper's Figure 3.
	Trace bool
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.K <= 0 {
		out.K = 2
	}
	return out
}

// Result carries the inferred SORE together with diagnostics about how much
// repairing was needed.
type Result struct {
	// Expr is the inferred SORE, with L(SOA) ⊆ L(Expr) (Theorem 2).
	Expr *regex.Expr
	// Repairs is the number of repair-rule applications.
	Repairs int
	// MaxKUsed is the largest fuzziness k that was needed.
	MaxKUsed int
	// Fallback reports that the universal disjunction fallback fired; on
	// the paper's corpora this never happens with the default options.
	Fallback bool
	// DroppedEdges counts edges removed by the noise-aware variant.
	DroppedEdges int
	// Trace holds the rewrite-rule applications when Options.Trace is set.
	Trace []string
}

// Infer runs 2T-INF on the sample and rewrites the automaton to a SORE,
// repairing as needed. It fails only on an empty alphabet (no non-empty
// strings in the sample).
func Infer(sample [][]string, opts *Options) (*Result, error) {
	return FromSOA(soa.Infer(sample), opts)
}

// InferSample is Infer on a counted, interned sample. Multiplicities flow
// into the automaton's support counts, so the noise threshold of Options
// sees exactly the occurrence statistics of the expanded strings.
func InferSample(s *smp.Set, opts *Options) (*Result, error) {
	return FromSOA(soa.InferSample(s), opts)
}

// InferSampleContext is InferSample under a context: the repair search
// checks for cancellation between iterations, and the automaton is checked
// against any state budget the context carries.
func InferSampleContext(ctx context.Context, s *smp.Set, opts *Options) (*Result, error) {
	return FromSOAContext(ctx, soa.InferSample(s), opts)
}

// FromSOA runs iDTD (Algorithm 2) on an already-inferred automaton.
func FromSOA(a *soa.SOA, opts *Options) (*Result, error) {
	return FromSOAContext(context.Background(), a, opts)
}

// FromSOAContext is FromSOA with cooperative cancellation and budget
// checks: the automaton is rejected up front when it exceeds the context's
// state budget, and every repair-search iteration (the algorithm's only
// unbounded-feeling loop — each iteration is polynomial but the repair
// escalation can run for many) is a cancellation checkpoint.
func FromSOAContext(ctx context.Context, a *soa.SOA, opts *Options) (*Result, error) {
	o := opts.withDefaults()
	if len(a.Symbols()) == 0 {
		return nil, gfa.ErrEmpty
	}
	syms := a.Symbols()
	n := len(syms)
	if err := budget.CheckStates(ctx, n); err != nil {
		return nil, err
	}
	if o.MaxK == 0 {
		o.MaxK = n + 2
	}
	if o.MaxRepairs == 0 {
		o.MaxRepairs = 4*n*n + 16
	}
	g := gfa.FromSOA(a)
	if o.Trace {
		g.EnableTrace()
	}
	res := &Result{}
	k := o.K
	res.MaxKUsed = k
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, err := g.SaturateContext(ctx); err != nil {
			return nil, err
		}
		if r, err := g.Result(); err == nil {
			res.Expr = r
			res.Trace = g.Trace()
			return res, nil
		}
		if o.NoiseThreshold > 0 && dropWeakestEdge(g, o.NoiseThreshold) {
			res.DroppedEdges++
			continue
		}
		if res.Repairs < o.MaxRepairs && repairOnce(g, k, o.Policy) {
			res.Repairs++
			continue
		}
		if res.Repairs < o.MaxRepairs && k < o.MaxK {
			k++
			res.MaxKUsed = k
			continue
		}
		// Universal fallback: the disjunction of all remaining symbols,
		// repeated. This is a SORE superset of any language over the
		// alphabet (ε is preserved by the source→sink edge if present).
		res.Fallback = true
		res.Expr = universalSORE(a)
		return res, nil
	}
}

func universalSORE(a *soa.SOA) *regex.Expr {
	syms := a.Symbols()
	subs := make([]*regex.Expr, len(syms))
	for i, s := range syms {
		subs[i] = regex.Sym(s)
	}
	e := regex.Plus(regex.Union(subs...))
	if a.AcceptsEmpty() {
		return regex.Simplify(regex.Opt(e))
	}
	return regex.Simplify(e)
}

// dropWeakestEdge removes the lowest-support edge not exceeding the
// threshold, implementing the Section 9 noise strategy of advancing rewrite
// by discarding weakly-supported transitions. Nodes left unreachable or
// dead are pruned. Returns false when no edge qualifies.
func dropWeakestEdge(g *gfa.GFA, threshold int) bool {
	best := [2]int{-1, -1}
	bestSupport := threshold + 1
	for _, e := range g.Edges() {
		s := g.EdgeSupport(e[0], e[1])
		if s > 0 && s < bestSupport {
			bestSupport = s
			best = e
		}
	}
	if best[0] < 0 {
		return false
	}
	g.RemoveEdge(best[0], best[1])
	pruneDeadNodes(g)
	return true
}

func pruneDeadNodes(g *gfa.GFA) {
	for {
		removed := false
		for _, id := range g.Nodes() {
			if g.InDegree(id) == 0 || g.OutDegree(id) == 0 {
				g.RemoveNode(id)
				removed = true
			}
		}
		if !removed {
			return
		}
	}
}
