package idtd

import (
	"dtdinfer/internal/gfa"
	"dtdinfer/internal/intern"
)

// repairOnce applies one repair rule at fuzziness k. Mutually
// interconnected disjunction candidates (precondition (b)) — the signature
// of symbols from one repeated disjunction, as in the paper's Figure 2 —
// are repaired first. Otherwise the cheapest plan wins between similarity
// disjunctions (precondition (a)) and enable-optional, preferring optional
// on ties: making a state skippable preserves the order information that a
// merge would destroy, which reproduces the paper's example4 result
// (a6+...+a61)* a5* rather than folding a5 into the disjunction.
func repairOnce(g *gfa.GFA, k int, policy RepairPolicy) bool {
	cl := g.Closure()
	if plan := bestDisjunctionRepair(g, cl, k, true); plan != nil {
		plan.apply(g)
		return true
	}
	dis := bestDisjunctionRepair(g, cl, k, false)
	opt := bestOptionalRepair(g, cl, k)
	var chosen *repairPlan
	switch {
	case dis == nil && opt == nil:
		return false
	case dis == nil:
		chosen = opt
	case opt == nil:
		chosen = dis
	default:
		switch policy {
		case PolicyDisjunctionFirst:
			chosen = dis
		case PolicyOptionalFirst:
			chosen = opt
		default: // PolicyBalanced
			if dis.cost() < opt.cost() {
				chosen = dis
			} else {
				chosen = opt
			}
		}
	}
	chosen.apply(g)
	return true
}

// repairPlan is a set of edges to add.
type repairPlan struct {
	adds [][2]int
}

func (p *repairPlan) cost() int { return len(p.adds) }

func (p *repairPlan) apply(g *gfa.GFA) {
	for _, e := range p.adds {
		g.AddEdgeSupport(e[0], e[1], 0)
	}
}

// bestDisjunctionRepair implements enable-disjunction restricted to pairs
// (the paper's implementation choice): find states u, v whose predecessor
// and successor sets are close (precondition (a): non-empty intersection
// and symmetric differences of size at most k) or mutually interconnected
// (precondition (b): each is a predecessor and successor of the other), and
// plan the minimal edge set making Pred(u) = Pred(v) and Succ(u) = Succ(v),
// after which the disjunction rewrite rule applies. With interconnected
// true only precondition-(b) pairs are considered, with false only
// (a)-pairs. Returns nil when no candidate needs any edges.
func bestDisjunctionRepair(g *gfa.GFA, cl *gfa.Closure, k int, interconnected bool) *repairPlan {
	nodes := g.Nodes()
	var best *repairPlan
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			condB := cl.Pred(u).Has(v) && cl.Succ(u).Has(v) &&
				cl.Pred(v).Has(u) && cl.Succ(v).Has(u)
			if condB != interconnected {
				continue
			}
			if !condB {
				pu, pv := without(cl.Pred(u), u, v), without(cl.Pred(v), u, v)
				su, sv := without(cl.Succ(u), u, v), without(cl.Succ(v), u, v)
				condA := pu.Intersects(pv) && su.Intersects(sv) &&
					pu.DiffCount(pv) <= k && pv.DiffCount(pu) <= k &&
					su.DiffCount(sv) <= k && sv.DiffCount(su) <= k
				if !condA {
					continue
				}
			}
			plan := disjunctionPlan(g, cl, u, v)
			if plan.cost() == 0 {
				// Already mergeable; saturation will handle it.
				continue
			}
			if best == nil || plan.cost() < best.cost() {
				best = plan
			}
		}
	}
	return best
}

// disjunctionPlan computes the minimal edge additions equalizing the
// external predecessor/successor sets of u and v, plus full internal
// interconnection (self loops included) when any edge already runs between
// them — the disjunction rule's case (ii).
func disjunctionPlan(g *gfa.GFA, cl *gfa.Closure, u, v int) *repairPlan {
	plan := &repairPlan{}
	addIfMissing := func(from, to int) {
		if !g.HasEdge(from, to) {
			plan.adds = append(plan.adds, [2]int{from, to})
		}
	}
	for _, w := range []int{u, v} {
		other := u
		if w == u {
			other = v
		}
		predsW, succsW := cl.Pred(w), cl.Succ(w)
		cl.Pred(other).ForEach(func(p int) {
			if p != u && p != v && !predsW.Has(p) {
				addIfMissing(p, w)
			}
		})
		cl.Succ(other).ForEach(func(s int) {
			if s != u && s != v && !succsW.Has(s) {
				addIfMissing(w, s)
			}
		})
	}
	su, sv := cl.Succ(u), cl.Succ(v)
	internal := su.Has(u) || su.Has(v) || sv.Has(u) || sv.Has(v) ||
		g.HasEdge(u, u) || g.HasEdge(u, v) || g.HasEdge(v, u) || g.HasEdge(v, v)
	if internal {
		for _, x := range []int{u, v} {
			for _, y := range []int{u, v} {
				if !cl.Succ(x).Has(y) {
					addIfMissing(x, y)
				}
			}
		}
	}
	return plan
}

// bestOptionalRepair implements enable-optional: pick a state r with
// (a) at least one existing edge from a predecessor of r to a successor of
// r, or (b) a single predecessor r' with |Succ(r') \ {r, r'}| <= k, and
// plan all missing bypass edges Pred(r) × Succ(r), enabling the optional
// rewrite rule on r.
func bestOptionalRepair(g *gfa.GFA, cl *gfa.Closure, k int) *repairPlan {
	var best *repairPlan
	for _, r := range g.Nodes() {
		label := g.Label(r)
		if label != nil && label.Nullable() {
			continue // optional would make no progress on r
		}
		preds := without(cl.Pred(r), r, r).Members()
		succs := without(cl.Succ(r), r, r).Members()
		if len(preds) == 0 || len(succs) == 0 {
			continue
		}
		if contains(preds, gfa.SourceID) && contains(succs, gfa.SinkID) &&
			!g.HasEdge(gfa.SourceID, gfa.SinkID) {
			// The bypass source→sink would add ε to the language, which no
			// expression can denote; optional cannot be enabled for r.
			continue
		}
		condA := false
		for _, p := range preds {
			for _, s := range succs {
				if g.HasEdge(p, s) {
					condA = true
					break
				}
			}
			if condA {
				break
			}
		}
		condB := false
		if len(preds) == 1 {
			rp := preds[0]
			extra := 0
			cl.Succ(rp).ForEach(func(s int) {
				if s != r && s != rp {
					extra++
				}
			})
			condB = extra <= k
		}
		if !condA && !condB {
			continue
		}
		plan := &repairPlan{}
		for _, p := range preds {
			for _, s := range succs {
				if p == gfa.SourceID && s == gfa.SinkID {
					continue
				}
				if !g.HasEdge(p, s) {
					plan.adds = append(plan.adds, [2]int{p, s})
				}
			}
		}
		if plan.cost() == 0 {
			continue
		}
		if best == nil || plan.cost() < best.cost() {
			best = plan
		}
	}
	return best
}

// without returns a copy of set with u and v removed.
func without(set intern.Bitset, u, v int) intern.Bitset {
	out := make(intern.Bitset, len(set))
	copy(out, set)
	out.Clear(u)
	out.Clear(v)
	return out
}

func contains(s []int, x int) bool {
	for _, y := range s {
		if y == x {
			return true
		}
	}
	return false
}
