package idtd

import (
	"dtdinfer/internal/gfa"
)

// repairOnce applies one repair rule at fuzziness k. Mutually
// interconnected disjunction candidates (precondition (b)) — the signature
// of symbols from one repeated disjunction, as in the paper's Figure 2 —
// are repaired first. Otherwise the cheapest plan wins between similarity
// disjunctions (precondition (a)) and enable-optional, preferring optional
// on ties: making a state skippable preserves the order information that a
// merge would destroy, which reproduces the paper's example4 result
// (a6+...+a61)* a5* rather than folding a5 into the disjunction.
func repairOnce(g *gfa.GFA, k int, policy RepairPolicy) bool {
	cl := g.Closure()
	if plan := bestDisjunctionRepair(g, cl, k, true); plan != nil {
		plan.apply(g)
		return true
	}
	dis := bestDisjunctionRepair(g, cl, k, false)
	opt := bestOptionalRepair(g, cl, k)
	var chosen *repairPlan
	switch {
	case dis == nil && opt == nil:
		return false
	case dis == nil:
		chosen = opt
	case opt == nil:
		chosen = dis
	default:
		switch policy {
		case PolicyDisjunctionFirst:
			chosen = dis
		case PolicyOptionalFirst:
			chosen = opt
		default: // PolicyBalanced
			if dis.cost() < opt.cost() {
				chosen = dis
			} else {
				chosen = opt
			}
		}
	}
	chosen.apply(g)
	return true
}

// repairPlan is a set of edges to add.
type repairPlan struct {
	adds [][2]int
}

func (p *repairPlan) cost() int { return len(p.adds) }

func (p *repairPlan) apply(g *gfa.GFA) {
	for _, e := range p.adds {
		g.AddEdgeSupport(e[0], e[1], 0)
	}
}

// bestDisjunctionRepair implements enable-disjunction restricted to pairs
// (the paper's implementation choice): find states u, v whose predecessor
// and successor sets are close (precondition (a): non-empty intersection
// and symmetric differences of size at most k) or mutually interconnected
// (precondition (b): each is a predecessor and successor of the other), and
// plan the minimal edge set making Pred(u) = Pred(v) and Succ(u) = Succ(v),
// after which the disjunction rewrite rule applies. With interconnected
// true only precondition-(b) pairs are considered, with false only
// (a)-pairs. Returns nil when no candidate needs any edges.
func bestDisjunctionRepair(g *gfa.GFA, cl *gfa.Closure, k int, interconnected bool) *repairPlan {
	nodes := g.Nodes()
	var best *repairPlan
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			condB := cl.Pred[u][v] && cl.Succ[u][v] && cl.Pred[v][u] && cl.Succ[v][u]
			if condB != interconnected {
				continue
			}
			if !condB {
				pu, pv := without(cl.Pred[u], u, v), without(cl.Pred[v], u, v)
				su, sv := without(cl.Succ[u], u, v), without(cl.Succ[v], u, v)
				condA := intersects(pu, pv) && intersects(su, sv) &&
					diffCount(pu, pv) <= k && diffCount(pv, pu) <= k &&
					diffCount(su, sv) <= k && diffCount(sv, su) <= k
				if !condA {
					continue
				}
			}
			plan := disjunctionPlan(g, cl, u, v)
			if plan.cost() == 0 {
				// Already mergeable; saturation will handle it.
				continue
			}
			if best == nil || plan.cost() < best.cost() {
				best = plan
			}
		}
	}
	return best
}

// disjunctionPlan computes the minimal edge additions equalizing the
// external predecessor/successor sets of u and v, plus full internal
// interconnection (self loops included) when any edge already runs between
// them — the disjunction rule's case (ii).
func disjunctionPlan(g *gfa.GFA, cl *gfa.Closure, u, v int) *repairPlan {
	plan := &repairPlan{}
	addIfMissing := func(from, to int) {
		if !g.HasEdge(from, to) {
			plan.adds = append(plan.adds, [2]int{from, to})
		}
	}
	for _, w := range []int{u, v} {
		other := u
		if w == u {
			other = v
		}
		for p := range cl.Pred[other] {
			if p != u && p != v && !cl.Pred[w][p] {
				addIfMissing(p, w)
			}
		}
		for s := range cl.Succ[other] {
			if s != u && s != v && !cl.Succ[w][s] {
				addIfMissing(w, s)
			}
		}
	}
	internal := cl.Succ[u][u] || cl.Succ[u][v] || cl.Succ[v][u] || cl.Succ[v][v] ||
		g.HasEdge(u, u) || g.HasEdge(u, v) || g.HasEdge(v, u) || g.HasEdge(v, v)
	if internal {
		for _, x := range []int{u, v} {
			for _, y := range []int{u, v} {
				if !cl.Succ[x][y] {
					addIfMissing(x, y)
				}
			}
		}
	}
	return plan
}

// bestOptionalRepair implements enable-optional: pick a state r with
// (a) at least one existing edge from a predecessor of r to a successor of
// r, or (b) a single predecessor r' with |Succ(r') \ {r, r'}| <= k, and
// plan all missing bypass edges Pred(r) × Succ(r), enabling the optional
// rewrite rule on r.
func bestOptionalRepair(g *gfa.GFA, cl *gfa.Closure, k int) *repairPlan {
	var best *repairPlan
	for _, r := range g.Nodes() {
		label := g.Label(r)
		if label != nil && label.Nullable() {
			continue // optional would make no progress on r
		}
		preds := without(cl.Pred[r], r, r)
		succs := without(cl.Succ[r], r, r)
		if len(preds) == 0 || len(succs) == 0 {
			continue
		}
		if preds[gfa.SourceID] && succs[gfa.SinkID] && !g.HasEdge(gfa.SourceID, gfa.SinkID) {
			// The bypass source→sink would add ε to the language, which no
			// expression can denote; optional cannot be enabled for r.
			continue
		}
		condA := false
		for p := range preds {
			for s := range succs {
				if g.HasEdge(p, s) {
					condA = true
					break
				}
			}
			if condA {
				break
			}
		}
		condB := false
		if len(preds) == 1 {
			var rp int
			for p := range preds {
				rp = p
			}
			extra := 0
			for s := range cl.Succ[rp] {
				if s != r && s != rp {
					extra++
				}
			}
			condB = extra <= k
		}
		if !condA && !condB {
			continue
		}
		plan := &repairPlan{}
		for p := range preds {
			for s := range succs {
				if p == gfa.SourceID && s == gfa.SinkID {
					continue
				}
				if !g.HasEdge(p, s) {
					plan.adds = append(plan.adds, [2]int{p, s})
				}
			}
		}
		if plan.cost() == 0 {
			continue
		}
		if best == nil || plan.cost() < best.cost() {
			best = plan
		}
	}
	return best
}

func without(set map[int]bool, u, v int) map[int]bool {
	out := make(map[int]bool, len(set))
	for x := range set {
		if x != u && x != v {
			out[x] = true
		}
	}
	return out
}

func intersects(a, b map[int]bool) bool {
	for x := range a {
		if b[x] {
			return true
		}
	}
	return false
}

func diffCount(a, b map[int]bool) int {
	n := 0
	for x := range a {
		if !b[x] {
			n++
		}
	}
	return n
}
