package idtd

import (
	"math/rand"
	"strings"
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/gfa"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/regextest"
	"dtdinfer/internal/soa"
)

func split(w string) []string {
	if w == "" {
		return nil
	}
	out := make([]string, len(w))
	for i, r := range w {
		out[i] = string(r)
	}
	return out
}

func sample(ws ...string) [][]string {
	out := make([][]string, len(ws))
	for i, w := range ws {
		out[i] = split(w)
	}
	return out
}

// Section 6's running example: on the Figure 2 automaton (inferred from only
// two of the three strings), rewrite fails but iDTD repairs the automaton
// back to Figure 1 via enable-disjunction on {a, c} and still derives
// ((b?(a+c))+d)+e.
func TestIDTDRepairsFigure2(t *testing.T) {
	ws := sample("bacacdacde", "cbacdbacde")
	if _, err := gfa.Rewrite(soa.Infer(ws)); err == nil {
		t.Fatal("precondition: rewrite alone must fail on Figure 2")
	}
	res, err := Infer(ws, nil)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	want := "((b? (a + c))+ d)+ e"
	if res.Expr.String() != want {
		t.Errorf("iDTD = %q, want %q", res.Expr, want)
	}
	if res.Repairs == 0 {
		t.Error("repairs should have been applied")
	}
	if res.Fallback {
		t.Error("fallback must not fire")
	}
}

func TestIDTDNoRepairOnRepresentativeSample(t *testing.T) {
	ws := sample("bacacdacde", "cbacdbacde", "abccaadcde")
	res, err := Infer(ws, nil)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if res.Repairs != 0 {
		t.Errorf("representative sample should need no repairs, got %d", res.Repairs)
	}
	if res.Expr.String() != "((b? (a + c))+ d)+ e" {
		t.Errorf("iDTD = %q", res.Expr)
	}
}

// Theorem 2: iDTD always produces a SORE r with L(A) ⊆ L(r).
func TestIDTDSupersetGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alpha := []string{"a", "b", "c", "d", "e"}
	for i := 0; i < 250; i++ {
		var ws [][]string
		for j := 0; j < 1+rng.Intn(6); j++ {
			n := 1 + rng.Intn(10)
			w := make([]string, n)
			for k := range w {
				w[k] = alpha[rng.Intn(len(alpha))]
			}
			ws = append(ws, w)
		}
		a := soa.Infer(ws)
		res, err := FromSOA(a, nil)
		if err != nil {
			t.Fatalf("iDTD failed: %v", err)
		}
		if !res.Expr.IsSORE() {
			t.Fatalf("result %s is not a SORE", res.Expr)
		}
		if !automata.Includes(automata.FromExpr(res.Expr), a.ToDFA()) {
			t.Fatalf("L(SOA) ⊄ L(%s) for sample %v", res.Expr, ws)
		}
		for _, w := range ws {
			if !automata.ExprMember(res.Expr, w) {
				t.Fatalf("result %s rejects sample string %v", res.Expr, w)
			}
		}
	}
}

// The paper's generalization discussion (Section 7): for (a1+...+an)*,
// rewrite needs all n² 2-grams; iDTD still needs about n²−n of them, and
// with repairs it recovers the full disjunction from fewer.
func TestIDTDRecoversRepeatedDisjunctionFromSparseSample(t *testing.T) {
	// Build a near-representative sample of (a+b+c+d)+ missing a few pairs.
	syms := []string{"a", "b", "c", "d"}
	var ws [][]string
	for i, x := range syms {
		for j, y := range syms {
			if (i+j)%5 == 4 {
				continue // drop some 2-grams
			}
			ws = append(ws, []string{x, y})
		}
	}
	res, err := Infer(ws, nil)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	want := regex.MustParse("(a + b + c + d)+")
	if !automata.ExprEquivalent(res.Expr, want) {
		t.Errorf("iDTD = %s, want ≡ %s", res.Expr, want)
	}
}

func TestIDTDEmptySampleError(t *testing.T) {
	if _, err := Infer(nil, nil); err == nil {
		t.Fatal("want error on empty sample")
	}
	if _, err := Infer([][]string{nil}, nil); err == nil {
		t.Fatal("want error on ε-only sample")
	}
}

func TestIDTDEpsilonPreserved(t *testing.T) {
	res, err := Infer([][]string{nil, {"a"}, {"a", "b"}}, nil)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if !res.Expr.Nullable() {
		t.Errorf("ε in sample must make result nullable, got %s", res.Expr)
	}
	for _, w := range [][]string{nil, {"a"}, {"a", "b"}} {
		if !automata.ExprMember(res.Expr, w) {
			t.Errorf("result %s rejects %v", res.Expr, w)
		}
	}
}

func TestIDTDFallbackUniversal(t *testing.T) {
	// Force the fallback with MaxRepairs and MaxK at minimum on a sample
	// that needs repairs.
	ws := sample("ab", "ba", "ca", "ac")
	res, err := Infer(ws, &Options{K: 1, MaxK: 1, MaxRepairs: 1})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	for _, w := range ws {
		if !automata.ExprMember(res.Expr, w) {
			t.Errorf("fallback %s rejects %v", res.Expr, w)
		}
	}
	if !res.Expr.IsSORE() {
		t.Errorf("fallback %s is not a SORE", res.Expr)
	}
}

func TestIDTDNoiseVariantIgnoresSupportsWhileRewriteAdvances(t *testing.T) {
	// Section 9: "as long as iDTD can apply the unmodified rewrite rules
	// these numbers are ignored". Noise that still leaves a SORE-equivalent
	// automaton is therefore kept even in noise-aware mode.
	var ws [][]string
	for i := 0; i < 200; i++ {
		ws = append(ws, split("abbc"), split("abc"))
	}
	ws = append(ws, split("axbc"))
	res, err := Infer(ws, &Options{NoiseThreshold: 5})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if !strings.Contains(res.Expr.String(), "x") || res.DroppedEdges != 0 {
		t.Errorf("rewrite never got stuck, so noise must be kept; got %s (%d drops)",
			res.Expr, res.DroppedEdges)
	}
}

func TestIDTDNoiseVariantDropsWedgingEdges(t *testing.T) {
	// One spurious "ba" among hundreds of "ab" creates an alternation
	// automaton with no equivalent SORE: rewrite wedges, and the noise-aware
	// variant advances by dropping the weakly supported edges.
	var ws [][]string
	for i := 0; i < 200; i++ {
		ws = append(ws, split("ab"))
	}
	ws = append(ws, split("ba"))
	res, err := Infer(ws, &Options{NoiseThreshold: 5})
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if res.DroppedEdges == 0 {
		t.Errorf("expected dropped edges, got result %s", res.Expr)
	}
	// The strategy is lazy: it stops dropping as soon as rewrite advances,
	// so the weak b→a edge that still permits a SORE survives as (a b)+.
	// What matters is that the noisy string is gone.
	if automata.ExprMember(res.Expr, split("ba")) {
		t.Errorf("noise-aware result %s still accepts the noisy string", res.Expr)
	}
	if !automata.ExprMember(res.Expr, split("ab")) {
		t.Errorf("noise-aware result %s lost the clean string", res.Expr)
	}
	// Without noise handling the same sample is repaired instead, keeping
	// the spurious strings in the language.
	plain, err := Infer(ws, nil)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if !automata.ExprMember(plain.Expr, split("ba")) {
		t.Errorf("plain result %s should keep the noisy string", plain.Expr)
	}
}

func TestNoiseHandlingByPruneSupport(t *testing.T) {
	// The "obvious way" of Section 9: drop low-support symbols up front.
	var ws [][]string
	for i := 0; i < 200; i++ {
		ws = append(ws, split("abbc"), split("abc"))
	}
	ws = append(ws, split("axbc"))
	a := soa.Infer(ws)
	a.PruneSupport(5, 5)
	res, err := FromSOA(a, nil)
	if err != nil {
		t.Fatalf("FromSOA: %v", err)
	}
	if !automata.ExprEquivalent(res.Expr, regex.MustParse("a b+ c")) {
		t.Errorf("pruned result = %s, want a b+ c", res.Expr)
	}
}

// On SOAs of random SOREs (representative case) iDTD behaves exactly like
// rewrite: zero repairs, equivalent language.
func TestIDTDMatchesRewriteOnRepresentativeSOAs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	alpha := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < 200; i++ {
		target := regextest.RandomSORE(rng, alpha, 3)
		a := soa.FromExpr(target)
		res, err := FromSOA(a, nil)
		if err != nil {
			t.Fatalf("iDTD failed on SOA of %s: %v", target, err)
		}
		if res.Repairs != 0 {
			t.Errorf("SOA of SORE %s needed %d repairs", target, res.Repairs)
		}
		if !automata.Equivalent(a.ToDFA(), automata.FromExpr(res.Expr)) {
			t.Errorf("iDTD(%s) = %s: language differs", target, res.Expr)
		}
	}
}

// Sparse samples from random SOREs: iDTD must always succeed and cover the
// sample, and (the accuracy claim) often recovers the exact target language
// even though the sample is not representative.
func TestIDTDOnSparseSamplesOfRandomSOREs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	alpha := []string{"a", "b", "c", "d", "e"}
	exact := 0
	runs := 150
	for i := 0; i < runs; i++ {
		target := regextest.RandomSORE(rng, alpha, 3)
		var ws [][]string
		nonEmpty := false
		for j := 0; j < 8; j++ {
			w := regextest.Sample(rng, target, 1, 2)
			nonEmpty = nonEmpty || len(w) > 0
			ws = append(ws, w)
		}
		if !nonEmpty {
			continue // e.g. targets like (e*)? can sample only ε
		}
		res, err := Infer(ws, nil)
		if err != nil {
			t.Fatalf("Infer failed for %s: %v", target, err)
		}
		for _, w := range ws {
			if !automata.ExprMember(res.Expr, w) {
				t.Fatalf("result %s rejects sample %v of %s", res.Expr, w, target)
			}
		}
		if automata.ExprEquivalent(res.Expr, target) {
			exact++
		}
	}
	if exact < runs/4 {
		t.Errorf("exact recovery too rare: %d/%d", exact, runs)
	}
}

func TestUniversalSOREShape(t *testing.T) {
	a := soa.Infer(sample("ab", "ba"))
	e := universalSORE(a)
	if e.String() != "(a + b)+" {
		t.Errorf("universalSORE = %s", e)
	}
	a.AddString(nil)
	if e := universalSORE(a); e.String() != "(a + b)*" {
		t.Errorf("universalSORE with ε = %s", e)
	}
}

// Ablation of the repair policy: the balanced default must reproduce both
// paper landmarks — Figure 2 (interconnected disjunction wins) and the
// example4 shape (optional preferred over folding a5 into the big
// disjunction) — while the single-minded policies each fail one of them.
func TestRepairPolicyAblation(t *testing.T) {
	fig2 := sample("bacacdacde", "cbacdbacde")
	example4 := regex.MustParse("p? q (s+ + ((x + y + z)+ s*))")
	ws := regextest.Sample(rand.New(rand.NewSource(99)), example4, 1, 2)
	_ = ws
	var ex4Sample [][]string
	s := rand.New(rand.NewSource(99))
	for i := 0; i < 400; i++ {
		ex4Sample = append(ex4Sample, regextest.Sample(s, example4, 1, 2))
	}

	type outcome struct{ fig2, ex4 string }
	results := map[Options]outcome{}
	for _, policy := range []RepairPolicy{PolicyBalanced, PolicyDisjunctionFirst, PolicyOptionalFirst} {
		opts := Options{Policy: policy}
		r1, err := Infer(fig2, &opts)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Infer(ex4Sample, &opts)
		if err != nil {
			t.Fatal(err)
		}
		results[opts] = outcome{r1.Expr.String(), r2.Expr.String()}
	}
	balanced := results[Options{Policy: PolicyBalanced}]
	if balanced.fig2 != "((b? (a + c))+ d)+ e" {
		t.Errorf("balanced policy lost Figure 2: %s", balanced.fig2)
	}
	// The balanced example4 result keeps s out of the disjunction.
	if !strings.Contains(balanced.ex4, "* s*") && !strings.Contains(balanced.ex4, ")* s*") {
		t.Logf("note: balanced ex4 = %s", balanced.ex4)
	}
	disj := results[Options{Policy: PolicyDisjunctionFirst}]
	if strings.Contains(disj.ex4, "* s*") {
		t.Logf("note: disjunction-first also kept s separate: %s", disj.ex4)
	}
}

func TestTraceOption(t *testing.T) {
	ws := sample("bacacdacde", "cbacdbacde", "abccaadcde")
	res, err := Infer(ws, &Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 7 {
		t.Errorf("trace has %d steps, want 7 (Figure 3):\n%s",
			len(res.Trace), strings.Join(res.Trace, "\n"))
	}
	plain, err := Infer(ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Trace) != 0 {
		t.Error("trace must be off by default")
	}
}
