// Package faultinject is a deterministic fault-injection registry for
// robustness tests. Production code places hook points — Fire(point, key)
// calls — at failure-relevant boundaries (the learner dispatch in
// internal/core, one per engine attempt); tests register faults against a
// (point, key) pair and the hook then panics, sleeps, or returns an error
// exactly where the registration says. With no registrations the hook is a
// single atomic load, so the hooks stay compiled into production binaries
// at effectively zero cost.
//
// Points are dot-separated hook names ("engine.idtd"); keys identify the
// unit of work passing the hook (an element name). The registry is global
// and guarded, so tests that register faults must not run in parallel with
// each other; Reset restores the no-op state.
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what a hook point does when it fires. Fields compose:
// a Fault with both Delay and Err sleeps first, then returns the error;
// Panic takes precedence over Err.
type Fault struct {
	// Panic makes the hook panic with a *Panic value carrying the point
	// and key, exercising recover barriers.
	Panic bool
	// Delay makes the hook sleep, exercising deadline budgets.
	Delay time.Duration
	// Err is returned by the hook, exercising error-degradation paths.
	Err error
	// Times bounds how often the fault fires: after Times firings the
	// registration clears itself and the hook succeeds again. 0 means
	// unlimited. A fail-N-then-succeed fault is how retry/backoff loops
	// are pinned without races on Reset timing.
	Times int
}

// Panic is the value thrown by a Panic fault, so recover barriers in tests
// can distinguish injected panics from real ones.
type Panic struct {
	Point, Key string
}

func (p *Panic) Error() string {
	return "faultinject: injected panic at " + p.Point + "/" + p.Key
}

var (
	// armed short-circuits Fire when no fault is registered.
	armed atomic.Bool
	mu    sync.Mutex
	// faults maps point -> key -> fault.
	faults map[string]map[string]Fault
)

// Set registers a fault for a (point, key) pair, replacing any previous
// registration for the pair. The empty key matches every key at the point.
func Set(point, key string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if faults == nil {
		faults = map[string]map[string]Fault{}
	}
	byKey := faults[point]
	if byKey == nil {
		byKey = map[string]Fault{}
		faults[point] = byKey
	}
	byKey[key] = f
	armed.Store(true)
}

// Pending reports whether a registration exists for exactly (point, key)
// without consuming it. Tests use it to observe that a Times-limited
// fault has fired: once the budget is spent the registration is gone —
// a deterministic "the hook has been reached" signal.
func Pending(point, key string) bool {
	mu.Lock()
	defer mu.Unlock()
	_, ok := faults[point][key]
	return ok
}

// ArmedAt reports whether any registration (any key) exists at point.
// Hook sites whose failure handling needs arming before the work starts
// — the pipelined ingestion committer stages into a scratch extraction
// only when a commit fault could fire — consult it once up front.
func ArmedAt(point string) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	return len(faults[point]) > 0
}

// Reset clears every registration, restoring the production no-op state.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	faults = nil
	armed.Store(false)
}

// Fire is the hook point: a no-op (one atomic load) unless a fault is
// registered for (point, key) or (point, ""). A firing fault sleeps for
// its Delay, then panics if Panic is set, then returns its Err.
func Fire(point, key string) error {
	if !armed.Load() {
		return nil
	}
	f, ok := lookup(point, key)
	if !ok {
		return nil
	}
	if f.Delay > 0 {
		time.Sleep(f.Delay)
	}
	if f.Panic {
		panic(&Panic{Point: point, Key: key})
	}
	return f.Err
}

func lookup(point, key string) (Fault, bool) {
	mu.Lock()
	defer mu.Unlock()
	byKey := faults[point]
	if byKey == nil {
		return Fault{}, false
	}
	if f, ok := take(byKey, key); ok {
		return f, true
	}
	return take(byKey, "")
}

// take fetches byKey[k], consuming one firing of a Times-limited fault
// and clearing the registration once its budget is spent. Must be called
// with mu held.
func take(byKey map[string]Fault, k string) (Fault, bool) {
	f, ok := byKey[k]
	if !ok {
		return Fault{}, false
	}
	if f.Times > 0 {
		if f.Times == 1 {
			delete(byKey, k)
		} else {
			g := f
			g.Times--
			byKey[k] = g
		}
	}
	return f, true
}
