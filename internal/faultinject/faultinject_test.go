package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestFireUnarmedIsNoop(t *testing.T) {
	Reset()
	if err := Fire("engine.idtd", "a"); err != nil {
		t.Errorf("unarmed Fire = %v", err)
	}
}

func TestErrFault(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("p", "k", Fault{Err: boom})
	if err := Fire("p", "k"); !errors.Is(err, boom) {
		t.Errorf("Fire = %v, want the registered error", err)
	}
	if err := Fire("p", "other"); err != nil {
		t.Errorf("other key fired: %v", err)
	}
	if err := Fire("other", "k"); err != nil {
		t.Errorf("other point fired: %v", err)
	}
}

func TestEmptyKeyMatchesAll(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("p", "", Fault{Err: boom})
	if err := Fire("p", "anything"); !errors.Is(err, boom) {
		t.Errorf("wildcard key did not fire: %v", err)
	}
}

func TestPanicFault(t *testing.T) {
	defer Reset()
	Set("p", "k", Fault{Panic: true})
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok || p.Point != "p" || p.Key != "k" {
			t.Errorf("recovered %v, want *Panic{p, k}", r)
		}
	}()
	Fire("p", "k")
	t.Error("Fire did not panic")
}

func TestDelayFault(t *testing.T) {
	defer Reset()
	Set("p", "k", Fault{Delay: 30 * time.Millisecond})
	start := time.Now()
	if err := Fire("p", "k"); err != nil {
		t.Errorf("delay-only fault returned %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("Fire returned after %v, want >= 30ms", d)
	}
}

func TestTimesLimitedFault(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("p", "k", Fault{Err: boom, Times: 2})
	for i := 0; i < 2; i++ {
		if err := Fire("p", "k"); !errors.Is(err, boom) {
			t.Errorf("firing %d = %v, want the registered error", i+1, err)
		}
	}
	if err := Fire("p", "k"); err != nil {
		t.Errorf("Fire after budget spent = %v, want nil", err)
	}
}

func TestTimesLimitedWildcard(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Set("p", "", Fault{Err: boom, Times: 1})
	if err := Fire("p", "a"); !errors.Is(err, boom) {
		t.Errorf("first firing = %v, want the registered error", err)
	}
	if err := Fire("p", "b"); err != nil {
		t.Errorf("second firing = %v, want nil (wildcard consumed)", err)
	}
}

func TestResetDisarms(t *testing.T) {
	Set("p", "k", Fault{Err: errors.New("boom")})
	Reset()
	if err := Fire("p", "k"); err != nil {
		t.Errorf("Fire after Reset = %v", err)
	}
}
