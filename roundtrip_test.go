package dtdinfer

// End-to-end round-trip property: for a randomly generated DTD, generate a
// corpus of documents from it, infer a schema back with each algorithm,
// and check that the inferred schema validates the corpus it was learned
// from. With a representative corpus and iDTD, the inferred content models
// must moreover be language-equivalent to (or supersets of) the originals.

import (
	"math/rand"
	"strings"
	"testing"

	"dtdinfer/internal/automata"
	"dtdinfer/internal/datagen"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/regextest"
)

// randomDTD builds a DTD shaped like real schemas: a root with a SORE over
// a few section elements, each section a SORE over leaf elements, leaves
// #PCDATA or EMPTY.
func randomDTD(rng *rand.Rand) *dtd.DTD {
	sections := []string{"alpha", "beta", "gamma", "delta"}
	leaves := []string{"t1", "t2", "t3", "t4", "t5", "t6"}
	d := dtd.New("root")
	d.Declare(&dtd.Element{
		Name: "root", Type: dtd.Children,
		Model: regex.Simplify(regextest.RandomSORE(rng, sections, 2)),
	})
	used := map[string]bool{}
	for _, s := range d.Elements["root"].Model.Symbols() {
		used[s] = true
	}
	for _, s := range sections {
		if !used[s] {
			continue
		}
		model := regex.Simplify(regextest.RandomSORE(rng, leaves, 2))
		d.Declare(&dtd.Element{Name: s, Type: dtd.Children, Model: model})
		for _, l := range model.Symbols() {
			if !used[l] {
				used[l] = true
				kind := dtd.PCData
				if rng.Intn(3) == 0 {
					kind = dtd.Empty
				}
				d.Declare(&dtd.Element{Name: l, Type: kind})
			}
		}
	}
	return d
}

func TestEndToEndRoundTripProperty(t *testing.T) {
	for i := 0; i < 25; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		d := randomDTD(rng)
		gen := &datagen.DocGenerator{DTD: d, Sampler: datagen.NewSampler(int64(i))}
		docStrs := gen.GenerateN(120)

		for _, algo := range []Algorithm{IDTD, CRX, TrangLike} {
			inferred, err := InferDTD(readers(docStrs), algo, nil)
			if err != nil {
				t.Fatalf("%s failed on DTD %s: %v", algo, d, err)
			}
			v := NewValidator(inferred)
			for _, doc := range docStrs {
				if !v.ValidDocument(doc) {
					t.Fatalf("%s-inferred DTD rejects its own corpus\noriginal: %s\ninferred: %s\ndoc: %s",
						algo, d, inferred, doc)
				}
			}
		}

		// With iDTD on a representative corpus, each inferred content
		// model is a superset of (often equal to) the original's language.
		x := NewExtraction()
		for _, doc := range docStrs {
			if err := x.AddDocument(strings.NewReader(doc)); err != nil {
				t.Fatal(err)
			}
		}
		// Inject edge-cover sequences so the sample is representative.
		for _, name := range d.Names() {
			e := d.Elements[name]
			if e.Type == dtd.Children {
				x.AddSequences(name, datagen.EdgeCoverSample(e.Model))
			}
		}
		inferred, err := InferDTDFromExtraction(x, IDTD, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range d.Names() {
			e := d.Elements[name]
			if e.Type != dtd.Children {
				continue
			}
			got := inferred.Elements[name]
			if got == nil || got.Type != dtd.Children {
				t.Fatalf("element %s lost its children model", name)
			}
			if !automata.ExprIncludes(got.Model, e.Model) {
				t.Fatalf("inferred %s model %s does not include original %s",
					name, got.Model, e.Model)
			}
			if !automata.ExprEquivalent(got.Model, e.Model) {
				// A strict superset is allowed but should be rare with a
				// representative sample; log for visibility.
				t.Logf("element %s: inferred %s ⊋ original %s", name, got.Model, e.Model)
			}
		}
	}
}
