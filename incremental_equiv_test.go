package dtdinfer

// Incremental-equivalence tests: inference memoized across interleaved
// AddDocs/infer cycles must be byte-identical to one-shot cold inference
// of the same corpus — across every engine, both decoders, and any
// worker count. These are the cache-invalidation regression gate: a
// fingerprint false-positive (stale model replayed after the sample
// changed) shows up here as a warm/cold divergence.

import (
	"fmt"
	"strings"
	"testing"

	"dtdinfer/internal/corpus"
	"dtdinfer/internal/dtd"
)

// inferOutcome renders an inference result for comparison: the DTD text
// on success, the error text on failure (engines like rewrite-only fail
// on non-representative samples; warm and cold must fail identically).
func inferOutcome(x *Extraction, algo Algorithm) string {
	d, err := InferDTDFromExtraction(x, algo, nil)
	if err != nil {
		return "error: " + err.Error()
	}
	return d.String()
}

func ingestBatch(t *testing.T, x *Extraction, docs []string, workers int, opts *IngestOptions) {
	t.Helper()
	batch := make([]dtd.Doc, len(docs))
	for i, d := range docs {
		batch[i] = dtd.Doc{Label: fmt.Sprintf("doc%d", i), R: strings.NewReader(d)}
	}
	if _, err := x.AddDocsParallel(batch, workers, opts, FailFast); err != nil {
		t.Fatal(err)
	}
}

// equivBatches is a corpus delta sequence exercising the cache's
// transitions: a cold start, a repeat-only batch (multiplicity bumps,
// shapes unchanged), and a batch introducing new shapes, a new element,
// a text flip and an attribute.
func equivBatches() [][]string {
	return [][]string{
		{
			`<r v="1"><x><y/></x><x><y/><y/></x></r>`,
			`<r><x><y/></x><t>alpha</t></r>`,
		},
		{
			`<r v="2"><x><y/></x><x><y/><y/></x></r>`, // shapes already seen
		},
		{
			`<r><x><z/><y/></x><t>beta</t><t>gamma</t></r>`, // new shapes + element
			`<r><x><y/>mixed</x></r>`,                       // x flips to mixed
		},
	}
}

// TestIncrementalColdWarmIdentical is the make-check smoke: for every
// registered engine, a warm extraction re-inferred after each batch must
// render byte-identically to a cold extraction built from scratch over
// the same prefix of the corpus.
func TestIncrementalColdWarmIdentical(t *testing.T) {
	algos := []Algorithm{IDTD, CRX, RewriteOnly, XTRACT, TrangLike, StateElim}
	for _, algo := range algos {
		t.Run(string(algo), func(t *testing.T) {
			warm := NewExtraction()
			var all []string
			for bi, batch := range equivBatches() {
				all = append(all, batch...)
				ingestBatch(t, warm, batch, 1, nil)
				got := inferOutcome(warm, algo)

				cold := NewExtraction()
				ingestBatch(t, cold, all, 1, nil)
				want := inferOutcome(cold, algo)
				if got != want {
					t.Fatalf("batch %d: warm differs from cold\nwarm: %s\ncold: %s", bi, got, want)
				}
			}
		})
	}
}

// TestIncrementalInterleavedEquivalence is the property test across the
// ingestion matrix: interleaved AddDocs/infer/AddDocs cycles on both
// decoders and workers 1..8 must stay byte-identical to one-shot cold
// inference at every step. IDTD and CRX cover every combination; every
// registered engine runs at one combination to bound the runtime.
func TestIncrementalInterleavedEquivalence(t *testing.T) {
	batches := [][]string{
		corpus.Protein(1, 6),
		corpus.Protein(2, 6),
		append(corpus.Protein(1, 3), equivBatches()[2]...),
	}
	allAlgos := []Algorithm{IDTD, CRX, RewriteOnly, XTRACT, TrangLike, StateElim}
	for _, dec := range []DecoderKind{DecoderFast, DecoderStd} {
		for _, workers := range []int{1, 2, 3, 8} {
			algos := []Algorithm{IDTD, CRX}
			if dec == DecoderFast && workers == 2 {
				algos = allAlgos
			}
			opts := &IngestOptions{Decoder: dec}
			for _, algo := range algos {
				t.Run(fmt.Sprintf("%v/workers=%d/%s", dec, workers, algo), func(t *testing.T) {
					warm := NewExtraction()
					var all []string
					for bi, batch := range batches {
						all = append(all, batch...)
						ingestBatch(t, warm, batch, workers, opts)
						got := inferOutcome(warm, algo)

						cold := NewExtraction()
						ingestBatch(t, cold, all, 1, opts)
						want := inferOutcome(cold, algo)
						if got != want {
							t.Fatalf("batch %d: warm differs from cold\nwarm: %s\ncold: %s", bi, got, want)
						}
					}
				})
			}
		}
	}
}
