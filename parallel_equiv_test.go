package dtdinfer

import (
	"io"
	"math/rand"
	"strings"
	"testing"

	"dtdinfer/internal/corpus"
	"dtdinfer/internal/dtd"
)

// TestParallelIngestionDTDByteIdentical is the parallel/sequential
// equivalence property: for shuffled corpora and any worker count, the
// inferred DTD must be byte-identical to sequential inference on the same
// document order. 2T-INF and the CRX summaries are commutative unions and
// the shard commit replays document order, so parallelism must not be
// observable in the output.
func TestParallelIngestionDTDByteIdentical(t *testing.T) {
	base := corpus.Protein(3, 90)
	base = append(base, corpus.Mondial(4, 40)...)
	for _, algo := range []Algorithm{IDTD, CRX} {
		for shuffle := int64(0); shuffle < 3; shuffle++ {
			docs := append([]string(nil), base...)
			rand.New(rand.NewSource(shuffle)).Shuffle(len(docs), func(i, j int) {
				docs[i], docs[j] = docs[j], docs[i]
			})
			want := inferString(t, docs, algo, 1)
			for _, workers := range []int{2, 8} {
				if got := inferString(t, docs, algo, workers); got != want {
					t.Errorf("algo=%s shuffle=%d workers=%d: DTD differs from sequential\ngot:\n%s\nwant:\n%s",
						algo, shuffle, workers, got, want)
				}
			}
		}
	}
}

func inferString(t *testing.T, docs []string, algo Algorithm, workers int) string {
	t.Helper()
	readers := make([]io.Reader, len(docs))
	for i, d := range docs {
		readers[i] = strings.NewReader(d)
	}
	d, _, _, err := InferDTDWithReport(readers, algo,
		&Options{Parallelism: workers}, nil, dtd.SkipAndRecord)
	if err != nil {
		t.Fatalf("algo=%s workers=%d: %v", algo, workers, err)
	}
	return d.String()
}
