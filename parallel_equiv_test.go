package dtdinfer

import (
	"io"
	"math/rand"
	"strings"
	"testing"

	"dtdinfer/internal/corpus"
	"dtdinfer/internal/dtd"
)

// TestParallelIngestionDTDByteIdentical is the parallel/sequential
// equivalence property: for shuffled corpora and any worker count, the
// inferred DTD must be byte-identical to sequential inference on the same
// document order. 2T-INF and the CRX summaries are commutative unions and
// the pipelined committer replays document order (shard k folds into the
// corpus while k+1..N still decode), so neither parallelism nor the
// decode/commit overlap must be observable in the output.
func TestParallelIngestionDTDByteIdentical(t *testing.T) {
	base := corpus.Protein(3, 90)
	base = append(base, corpus.Mondial(4, 40)...)
	for _, algo := range []Algorithm{IDTD, CRX} {
		for shuffle := int64(0); shuffle < 3; shuffle++ {
			docs := append([]string(nil), base...)
			rand.New(rand.NewSource(shuffle)).Shuffle(len(docs), func(i, j int) {
				docs[i], docs[j] = docs[j], docs[i]
			})
			want := inferString(t, docs, algo, 1, dtd.DecoderFast)
			for _, workers := range []int{2, 3, 5, 8} {
				if got := inferString(t, docs, algo, workers, dtd.DecoderFast); got != want {
					t.Errorf("algo=%s shuffle=%d workers=%d: DTD differs from sequential\ngot:\n%s\nwant:\n%s",
						algo, shuffle, workers, got, want)
				}
			}
		}
	}
}

// TestParallelIngestionPipelinedBothDecoders sweeps the pipelined path
// across worker counts 1..8 under both decoders: the std decoder commits
// staged extractions through Merge, the fast decoder through the remapped
// ID fold, and both must reproduce the sequential DTD byte-for-byte.
func TestParallelIngestionPipelinedBothDecoders(t *testing.T) {
	docs := append(corpus.Protein(7, 60), corpus.Mondial(8, 25)...)
	for _, decoder := range []dtd.DecoderKind{dtd.DecoderFast, dtd.DecoderStd} {
		want := inferString(t, docs, IDTD, 1, decoder)
		for workers := 2; workers <= 8; workers++ {
			if got := inferString(t, docs, IDTD, workers, decoder); got != want {
				t.Errorf("decoder=%s workers=%d: DTD differs from sequential\ngot:\n%s\nwant:\n%s",
					decoder, workers, got, want)
			}
		}
	}
}

func inferString(t *testing.T, docs []string, algo Algorithm, workers int, decoder dtd.DecoderKind) string {
	t.Helper()
	readers := make([]io.Reader, len(docs))
	for i, d := range docs {
		readers[i] = strings.NewReader(d)
	}
	d, _, _, err := InferDTDWithReport(readers, algo,
		&Options{Parallelism: workers}, &dtd.IngestOptions{Decoder: decoder}, dtd.SkipAndRecord)
	if err != nil {
		t.Fatalf("algo=%s workers=%d: %v", algo, workers, err)
	}
	return d.String()
}
