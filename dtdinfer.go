// Package dtdinfer infers concise Document Type Definitions from XML data,
// implementing Bex, Neven, Schwentick and Tuyls, "Inference of Concise DTDs
// from XML Data" (VLDB 2006).
//
// DTD inference reduces to learning a deterministic regular expression for
// each element name from the sequences of child elements observed in a
// corpus. This package learns two classes that cover over 99% of content
// models in real-world schemas:
//
//   - SOREs (single occurrence regular expressions), via the iDTD
//     algorithm: a 2T-INF automaton is inferred from the sample and
//     rewritten into an equivalent SORE, with repair rules producing a
//     tight super-approximation when the sample is not representative.
//     Best with plenty of data.
//   - CHAREs (chain regular expressions), via the CRX algorithm, which
//     generalizes aggressively and needs very few example strings — the
//     right choice for sparse data such as web-service responses.
//
// Quick start:
//
//	docs := []io.Reader{strings.NewReader(xmlDoc1), strings.NewReader(xmlDoc2)}
//	d, err := dtdinfer.InferDTD(docs, dtdinfer.IDTD, nil)
//	fmt.Println(d) // <!DOCTYPE root [ <!ELEMENT ...> ... ]>
//
// Baseline systems from the paper's evaluation (XTRACT, a Trang-like
// pipeline, and classical state elimination) are available through the same
// API for comparison, and internal/experiments regenerates every table and
// figure of the paper.
package dtdinfer

import (
	"context"
	"io"

	"dtdinfer/internal/contextual"
	"dtdinfer/internal/core"
	"dtdinfer/internal/crx"
	"dtdinfer/internal/dtd"
	"dtdinfer/internal/idtd"
	"dtdinfer/internal/regex"
	"dtdinfer/internal/soa"
	"dtdinfer/internal/xsd"
)

// Algorithm selects the inference engine.
type Algorithm = core.Algorithm

// The available algorithms: the paper's two contributions and its
// comparison systems.
const (
	// IDTD infers SOREs (best with abundant data).
	IDTD = core.IDTD
	// CRX infers CHAREs (best with sparse data).
	CRX = core.CRX
	// RewriteOnly is rewrite without repairs; it fails on samples that are
	// not representative.
	RewriteOnly = core.RewriteOnly
	// XTRACT is the reconstruction of the XTRACT baseline.
	XTRACT = core.XTRACT
	// TrangLike is the reconstruction of Trang's inference strategy.
	TrangLike = core.TrangLike
	// StateElim translates the inferred automaton by classical state
	// elimination (the paper's negative baseline for conciseness).
	StateElim = core.StateElim
)

// ParseAlgorithm converts a command-line name into an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) { return core.ParseAlgorithm(name) }

// Options tune the engines; the zero value (or nil) uses the paper's
// settings (k = 2 for iDTD's repair rules, 1000-string cap for XTRACT).
type Options = core.Options

// Budget caps the resources one element's inference may consume: a
// wall-clock deadline, an automaton state count, and an output expression
// size. The zero value applies no caps.
type Budget = core.Budget

// DegradeMode selects the reaction when an element's engine fails,
// exceeds its Budget, or panics.
type DegradeMode = core.DegradeMode

const (
	// DegradeFail propagates the failure, aborting the whole inference
	// (the default for library callers).
	DegradeFail = core.DegradeFail
	// DegradeLadder falls back per element: configured engine, then CRX,
	// then the universal content model (a1|...|an)*. The accepted rung is
	// recorded in the InferStats outcomes.
	DegradeLadder = core.DegradeLadder
)

// ElementOutcome records which engine produced an element's content model
// and whether (and why) inference degraded.
type ElementOutcome = dtd.ElementOutcome

// IDTDOptions configure the iDTD repair rules and noise handling.
type IDTDOptions = idtd.Options

// Expr is a regular expression over element names (a content model).
type Expr = regex.Expr

// ParseExpr parses a content model in either the paper's notation
// ("(b?(a + c))+d") or DTD notation ("((b?,(a|c))+,d)").
func ParseExpr(src string) (*Expr, error) { return regex.Parse(src) }

// DTD is an inferred or parsed Document Type Definition.
type DTD = dtd.DTD

// Element is one element declaration of a DTD.
type Element = dtd.Element

// Extraction accumulates child-element sequences from XML documents.
type Extraction = dtd.Extraction

// NewExtraction returns an empty accumulator; add documents with
// AddDocument and infer with InferDTDFromExtraction.
func NewExtraction() *Extraction { return dtd.NewExtraction() }

// IngestOptions caps the resources one document may consume during
// extraction (nesting depth, token count, distinct element names, input
// bytes) — the XML-bomb defense for untrusted corpora. The zero value
// applies no limits.
type IngestOptions = dtd.IngestOptions

// DefaultIngestOptions returns production-safe caps for untrusted inputs.
func DefaultIngestOptions() *IngestOptions { return dtd.DefaultIngestOptions() }

// DecoderKind selects the XML decoder used during extraction.
type DecoderKind = dtd.DecoderKind

const (
	// DecoderFast (the default) is the zero-copy structure tokenizer: it
	// decodes only what inference consumes and is differentially tested to
	// produce byte-identical extractions to encoding/xml.
	DecoderFast = dtd.DecoderFast
	// DecoderStd is encoding/xml, kept as the reference oracle and
	// conservative fallback.
	DecoderStd = dtd.DecoderStd
)

// ParseDecoder converts a command-line name ("fast" or "std") into a
// DecoderKind.
func ParseDecoder(name string) (DecoderKind, error) { return dtd.ParseDecoder(name) }

// ErrLimit matches (with errors.Is) every ingestion cap violation.
var ErrLimit = dtd.ErrLimit

// LimitError reports which ingestion cap a document violated.
type LimitError = dtd.LimitError

// ErrorPolicy selects how batch ingestion reacts to a failing document.
type ErrorPolicy = dtd.ErrorPolicy

const (
	// FailFast aborts the batch at the first failing document.
	FailFast = dtd.FailFast
	// SkipAndRecord records failing documents in the IngestReport and
	// continues; each failure is rolled back, isolating its fault.
	SkipAndRecord = dtd.SkipAndRecord
)

// IngestReport aggregates ingestion counters and per-document errors.
type IngestReport = dtd.IngestReport

// DocumentError is one document's ingestion failure inside a batch.
type DocumentError = dtd.DocumentError

// InferStats reports per-element timings from the inference worker pool.
type InferStats = dtd.InferStats

// InferDTDWithReport ingests the documents under the given caps and
// fault-isolation policy, infers a DTD, and reports ingestion counters and
// per-element inference timings. Every AddDocument is failure-atomic, so a
// skipped document contributes nothing: the batch with a malformed
// document (under SkipAndRecord) infers the same DTD as the batch without
// it, with the failure recorded in the report.
func InferDTDWithReport(docs []io.Reader, algo Algorithm, opts *Options,
	ingest *IngestOptions, policy ErrorPolicy) (*DTD, *IngestReport, *InferStats, error) {
	return core.InferDTDReport(docs, algo, opts, ingest, policy)
}

// Validator checks documents against a DTD.
type Validator = dtd.Validator

// Violation is one validation failure.
type Violation = dtd.Violation

// NewValidator compiles a DTD's content models for validation.
func NewValidator(d *DTD) *Validator { return dtd.NewValidator(d) }

// ParseDTD reads <!ELEMENT> declarations, optionally wrapped in
// <!DOCTYPE root [...]>.
func ParseDTD(src string) (*DTD, error) { return dtd.Parse(src) }

// InferContentModel learns a single content-model expression from positive
// example strings (sequences of child element names).
func InferContentModel(sample [][]string, algo Algorithm, opts *Options) (*Expr, error) {
	return core.InferExpr(sample, algo, opts)
}

// InferDTD extracts element sequences from the XML documents and infers a
// complete DTD.
func InferDTD(docs []io.Reader, algo Algorithm, opts *Options) (*DTD, error) {
	return core.InferDTD(docs, algo, opts)
}

// InferDTDContext is InferDTD under a context: cancellation propagates
// into the XML decode loops and every engine's hot loop, and opts.Budget
// and opts.Degrade govern per-element resource caps and the degradation
// ladder. A cancelled call returns ctx.Err() promptly without leaking
// goroutines.
func InferDTDContext(ctx context.Context, docs []io.Reader, algo Algorithm, opts *Options) (*DTD, error) {
	return core.InferDTDContext(ctx, docs, algo, opts)
}

// InferDTDFromExtraction infers a DTD from pre-extracted sequences,
// supporting incremental workflows where extraction state is kept while new
// documents arrive. Repeated calls with the same algorithm and options are
// memoized per element: only elements whose samples changed since the
// previous call re-enter the engines, and the result stays byte-identical
// to a cold inference.
func InferDTDFromExtraction(x *Extraction, algo Algorithm, opts *Options) (*DTD, error) {
	return core.InferDTDFromExtraction(x, algo, opts)
}

// Doc is one labelled document in an ingestion batch: a reader plus the
// label (typically a file name) error reports attribute failures to.
type Doc = dtd.Doc

// Snapshot is one published inference result: an immutable DTD tagged
// with a monotonically increasing version, plus the stats of the pass
// that produced it. Readers may hold a snapshot indefinitely while newer
// versions are published.
type Snapshot = core.Snapshot

// Incremental maintains a DTD over a growing corpus: ingest batches with
// AddDocs, publish immutable versioned snapshots with Refresh, and read
// the latest with Current (a lock-free atomic load, safe concurrent with
// ingestion and re-inference). Re-inference is incremental: elements
// whose samples are unchanged replay their cached content models.
type Incremental = core.Incremental

// NewIncremental returns an empty incremental inferrer for the given
// engine configuration.
func NewIncremental(algo Algorithm, opts *Options) *Incremental {
	return core.NewIncremental(algo, opts)
}

// NewIncrementalFromExtraction wraps an existing extraction — typically
// one recovered with LoadCorpus — so incremental inference resumes from
// persisted state instead of an empty corpus.
func NewIncrementalFromExtraction(x *Extraction, algo Algorithm, opts *Options) *Incremental {
	return core.NewIncrementalFromExtraction(x, algo, opts)
}

// RetryPolicy bounds a retried operation: attempts, exponential backoff
// with jitter, and a backoff cap. The zero value means the defaults
// (3 attempts, 50ms initial backoff, 2s cap).
type RetryPolicy = core.RetryPolicy

// SaveCorpusRetry is SaveCorpus under a retry policy: transient write
// failures are retried with jittered exponential backoff. A nil policy
// uses the defaults.
func SaveCorpusRetry(x *Extraction, path string, policy *RetryPolicy) error {
	return core.SaveCorpusRetry(x, path, policy)
}

// ChangeFeed renders what changed between two published snapshots
// ("v3→v4: modified <order>, added <sku>"). A nil prev reports every
// element as added.
func ChangeFeed(prev, next *Snapshot) string { return core.ChangeFeed(prev, next) }

// SaveCorpus writes the extraction's corpus summary — counted samples,
// text and attribute statistics, and incremental-inference state — to
// path atomically (temp file + rename). A summary is typically kilobytes
// regardless of corpus size, loads in time proportional to its own size,
// and infers byte-identically to the extraction it was saved from.
func SaveCorpus(x *Extraction, path string) error { return core.SaveCorpus(x, path) }

// LoadCorpus reads a corpus summary written by SaveCorpus. The bytes are
// validated as untrusted input: corruption yields an error, never a
// panic. The loaded extraction accepts further documents, merges with
// other summaries via MergeSummary, and replays any cached content
// models it was saved with.
func LoadCorpus(path string) (*Extraction, error) { return core.LoadCorpus(path) }

// WriteCorpus and ReadCorpus are the io.Writer/io.Reader forms of
// SaveCorpus and LoadCorpus.
func WriteCorpus(x *Extraction, w io.Writer) error { return core.WriteCorpus(x, w) }

// ReadCorpus reads a corpus summary from r; see WriteCorpus.
func ReadCorpus(r io.Reader) (*Extraction, error) { return core.ReadCorpus(r) }

// InferXSD infers a schema and renders it as W3C XML Schema with datatype
// detection over the sampled text values.
func InferXSD(docs []io.Reader, algo Algorithm, opts *Options) (string, error) {
	return core.InferXSD(docs, algo, opts)
}

// InferXSDContext is InferXSD under a context, with the same cancellation
// and budget semantics as InferDTDContext.
func InferXSDContext(ctx context.Context, docs []io.Reader, algo Algorithm, opts *Options) (string, error) {
	return core.InferXSDContext(ctx, docs, algo, opts)
}

// GenerateXSD renders an existing DTD as XML Schema; textSamples (may be
// nil) drives datatype detection for text-only elements.
func GenerateXSD(d *DTD, textSamples map[string][]string) string {
	return xsd.Generate(d, textSamples)
}

// ParseXSD reads an XML Schema document (the DTD-expressible subset that
// GenerateXSD emits) back into a DTD.
func ParseXSD(src string) (*DTD, error) { return xsd.Parse(src) }

// Attribute is one attribute declaration of an element; inference derives
// ID/IDREF/enumeration/NMTOKEN types and #REQUIRED/#IMPLIED use from the
// observed attribute values.
type Attribute = dtd.Attribute

// IncrementalCRX is the summary state for incremental CHARE inference
// (Section 9): fold strings in with AddString, combine summaries with
// Merge, and obtain the current expression with Infer.
type IncrementalCRX = crx.State

// NewIncrementalCRX returns an empty CRX summary.
func NewIncrementalCRX() *IncrementalCRX { return crx.NewState() }

// ContextualSchema is a schema with k-local typing: the content model of
// an element may depend on up to k ancestor names, exceeding DTD
// expressiveness exactly the way XML Schema does — the paper's stated
// future work, realized for the k-local case.
type ContextualSchema = contextual.Schema

// InferContextualSchema extracts per-context samples (contexts keep up to
// k ancestor names; k = 0 degenerates to DTD inference) and infers a
// contextual schema with the chosen algorithm. Contexts of an element with
// equivalent content languages and equivalent child typing are merged, so
// the schema has as few types as the data supports; render it with ToXSD,
// flatten with ToDTD, or validate with contextual.NewValidator.
func InferContextualSchema(docs []io.Reader, k int, algo Algorithm, opts *Options) (*ContextualSchema, error) {
	x := contextual.NewExtraction(k)
	for _, r := range docs {
		if err := x.AddDocument(r); err != nil {
			return nil, err
		}
	}
	return x.InferSchema(core.Inferrer(algo, opts))
}

// NewContextualValidator compiles a contextual schema for validation.
func NewContextualValidator(s *ContextualSchema) *contextual.Validator {
	return contextual.NewValidator(s)
}

// IncrementalSOA is the single occurrence automaton summary for
// incremental SORE inference: fold strings in with AddString, combine with
// Merge, and obtain the current SORE with InferSORE. The automaton is
// quadratic in the alphabet regardless of how much data it has absorbed.
type IncrementalSOA = soa.SOA

// NewIncrementalSOA returns an empty automaton summary.
func NewIncrementalSOA() *IncrementalSOA { return soa.New() }

// InferSORE runs iDTD on an accumulated automaton summary.
func InferSORE(a *IncrementalSOA, opts *Options) (*Expr, error) {
	var io *IDTDOptions
	if opts != nil {
		io = &opts.IDTD
	}
	res, err := idtd.FromSOA(a, io)
	if err != nil {
		return nil, err
	}
	return res.Expr, nil
}
