# Development targets. `make check` is the gate every PR must pass: it
# vets the tree and runs the full test suite under the race detector, so
# the concurrent InferDTD worker pool is race-checked on every change.

GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: vet race

bench:
	$(GO) test -bench . -benchtime 1x ./...
