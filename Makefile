# Development targets. `make check` is the gate every PR must pass: it
# checks formatting, vets the tree and runs the full test suite under the
# race detector, so the concurrent InferDTD worker pool is race-checked on
# every change.

GO ?= go

.PHONY: build test vet fmt-check race check bench bench-smoke fuzz-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) when any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race -timeout 10m ./...

check: fmt-check vet race

# bench records the perf-trajectory workloads (Section 8.3 timings, the
# end-to-end pipeline at several ingestion worker counts, the isolated
# sharded-ingestion benchmark, and the dedup-vs-verbatim sample pipeline
# comparison) as BENCH_PR4.json via cmd/benchjson.
BENCH_PATTERN = BenchmarkPerf|BenchmarkEndToEndDTD|BenchmarkIngestParallel|BenchmarkIngestDedup
BENCH_COUNT ?= 3x

bench:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_COUNT) . \
		| $(GO) run ./cmd/benchjson > BENCH_PR4.json

# bench-smoke is the CI gate: every benchmark must run once without failing.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# fuzz-smoke runs each fuzz target briefly; go permits one -fuzz target
# per invocation, hence four commands.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/dtd
	$(GO) test -run xxx -fuzz FuzzExtraction -fuzztime $(FUZZTIME) ./internal/dtd
	$(GO) test -run xxx -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/sample
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/regex
