# Development targets. `make check` is the gate every PR must pass: it
# checks formatting, vets the tree and runs the full test suite under the
# race detector, so the concurrent InferDTD worker pool is race-checked on
# every change.

GO ?= go

.PHONY: build test vet fmt-check race check bench bench-smoke fuzz-smoke profile incremental-smoke snapshot-smoke serve-smoke pipeline-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) when any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# race runs every test at GOMAXPROCS 1 and 4 (-cpu 1,4): single-CPU
# containers still exercise the concurrent shard/commit paths under the
# race detector at a parallelism the hardware alone would never pick.
RACE_CPU ?= 1,4

race:
	$(GO) test -race -timeout 10m -cpu $(RACE_CPU) ./...

# incremental-smoke is the cache-equivalence gate: for every engine, warm
# re-inference over a memoized extraction must stay byte-identical to a
# cold from-scratch run. It also runs under `race` as part of the full
# suite; the named target keeps the check visible (and fast to run alone)
# when touching the fingerprint or cache code.
incremental-smoke:
	$(GO) test -run 'TestIncrementalColdWarmIdentical' .

# snapshot-smoke is the durable-summary gate: save -> load -> infer must
# stay byte-identical to direct inference, and shard summaries merged in
# order must reproduce single-corpus ingestion exactly.
snapshot-smoke:
	$(GO) test -run 'TestSnapshotSaveLoadInferEquivalence|TestSnapshotShardMergeEquivalence' .

# serve-smoke is the schema-service gate: it builds dtdserved and drives
# the real binary through ingest -> read -> SIGTERM drain and kill -9
# crash recovery, plus the in-process drain/recovery tests, all under the
# race detector. The server package also runs under `race` with the full
# suite; the named target is the fast loop when touching the daemon.
serve-smoke:
	$(GO) test -race -run 'TestDaemon' -count=1 .
	$(GO) test -race -count=1 ./internal/server

# pipeline-smoke is the pipelined-ingestion gate: byte-identity between
# the pipelined parallel path and sequential ingestion across worker
# counts 1..8 and both decoders, plus flush-unit splitting, FailFast
# prefix semantics, commit-fault atomicity and mid-commit cancellation —
# all under the race detector so the worker/committer handoff is checked
# at real parallelism.
pipeline-smoke:
	$(GO) test -race -cpu $(RACE_CPU) -count=1 \
		-run 'TestPipeline|TestParallelExtractionIdenticalToSequential|TestParallelInternIDsIdenticalAcrossWorkerCounts|TestParallelIngestion' \
		./internal/dtd .

check: fmt-check vet incremental-smoke snapshot-smoke serve-smoke pipeline-smoke race

# bench records the perf-trajectory workloads (Section 8.3 timings, the
# end-to-end pipeline at several ingestion worker counts, the isolated
# sharded-ingestion benchmark at both decoders, the dedup-vs-verbatim
# sample pipeline comparison, the cold-vs-warm incremental inference
# contrast, and the corpus-summary save/load-vs-reingest contrast) as
# BENCH_PR10.json via cmd/benchjson. Parallel-ingestion entries carry a
# stage_ns breakdown (decode/flush-wait/commit/committer-idle) from the
# pipelined committer's PipelineStats.
#
# The ingestion benchmarks run over a generated corpus of BENCH_MB
# megabytes (default 100) so worker counts are measured against a
# workload that can amortize fan-out. The target refuses to record at
# GOMAXPROCS < 2: BENCH_PR5 silently recorded every parallel entry at
# gomaxprocs 1, which is how a parallel-ingestion regression stayed
# invisible. On a single-CPU machine, set GOMAXPROCS explicitly (e.g.
# GOMAXPROCS=4) to record an oversubscribed run — the per-entry
# gomaxprocs/cpus metrics keep it honest.
BENCH_PATTERN = BenchmarkPerf|BenchmarkEndToEndDTD|BenchmarkIngestParallel|BenchmarkIngestDecoder|BenchmarkIngestDedup|BenchmarkIncrementalInfer|BenchmarkSnapshot
BENCH_COUNT ?= 3x
BENCH_MB ?= 100
BENCH_OUT ?= BENCH_PR10.json

bench:
	@gmp="$${GOMAXPROCS:-$$(nproc)}"; \
	if [ "$$gmp" -lt 2 ]; then \
		echo "make bench: refusing to record at GOMAXPROCS=$$gmp (< 2)."; \
		echo "Parallel benchmarks on one scheduler thread measure nothing;"; \
		echo "set GOMAXPROCS>=2 explicitly to record anyway (the per-entry"; \
		echo "gomaxprocs/cpus metrics will show the real shape)."; \
		exit 1; \
	fi
	DTDINFER_BENCH_MB=$(BENCH_MB) $(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_COUNT) -timeout 60m . \
		| $(GO) run ./cmd/benchjson > $(BENCH_OUT)

# bench-smoke is the CI gate: every benchmark must run once without
# failing; the decoder benchmark covers both the fast and the std path.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# profile records CPU and allocation pprof profiles over the ingestion
# benchmark; inspect with `go tool pprof cpu.pprof` / `mem.pprof`.
PROFILE_BENCH ?= BenchmarkIngestParallel/workers1
profile:
	$(GO) test -run xxx -bench '$(PROFILE_BENCH)' -benchtime 10x \
		-cpuprofile cpu.pprof -memprofile mem.pprof .
	@echo "wrote cpu.pprof and mem.pprof (go tool pprof <file>)"

# fuzz-smoke runs each fuzz target briefly; go permits one -fuzz target
# per invocation, hence one command per target. FuzzTokenizerEquivalence
# is the differential gate holding the fast decoder to encoding/xml.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/dtd
	$(GO) test -run xxx -fuzz FuzzExtraction -fuzztime $(FUZZTIME) ./internal/dtd
	$(GO) test -run xxx -fuzz FuzzSnapshotDecode -fuzztime $(FUZZTIME) ./internal/dtd
	$(GO) test -run xxx -fuzz FuzzTokenizerEquivalence -fuzztime $(FUZZTIME) ./internal/dtd
	$(GO) test -run xxx -fuzz FuzzStreamEquivalence -fuzztime $(FUZZTIME) ./internal/xmltok
	$(GO) test -run xxx -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/sample
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/regex
