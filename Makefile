# Development targets. `make check` is the gate every PR must pass: it
# checks formatting, vets the tree and runs the full test suite under the
# race detector, so the concurrent InferDTD worker pool is race-checked on
# every change.

GO ?= go

.PHONY: build test vet fmt-check race check bench bench-smoke fuzz-smoke profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# fmt-check fails (listing the offenders) when any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race -timeout 10m ./...

check: fmt-check vet race

# bench records the perf-trajectory workloads (Section 8.3 timings, the
# end-to-end pipeline at several ingestion worker counts, the isolated
# sharded-ingestion benchmark at both decoders, and the dedup-vs-verbatim
# sample pipeline comparison) as BENCH_PR5.json via cmd/benchjson.
BENCH_PATTERN = BenchmarkPerf|BenchmarkEndToEndDTD|BenchmarkIngestParallel|BenchmarkIngestDecoder|BenchmarkIngestDedup
BENCH_COUNT ?= 3x

bench:
	$(GO) test -run xxx -bench '$(BENCH_PATTERN)' -benchmem -benchtime $(BENCH_COUNT) . \
		| $(GO) run ./cmd/benchjson > BENCH_PR5.json

# bench-smoke is the CI gate: every benchmark must run once without
# failing; the decoder benchmark covers both the fast and the std path.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# profile records CPU and allocation pprof profiles over the ingestion
# benchmark; inspect with `go tool pprof cpu.pprof` / `mem.pprof`.
PROFILE_BENCH ?= BenchmarkIngestParallel/workers1
profile:
	$(GO) test -run xxx -bench '$(PROFILE_BENCH)' -benchtime 10x \
		-cpuprofile cpu.pprof -memprofile mem.pprof .
	@echo "wrote cpu.pprof and mem.pprof (go tool pprof <file>)"

# fuzz-smoke runs each fuzz target briefly; go permits one -fuzz target
# per invocation, hence one command per target. FuzzTokenizerEquivalence
# is the differential gate holding the fast decoder to encoding/xml.
FUZZTIME ?= 10s

fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/dtd
	$(GO) test -run xxx -fuzz FuzzExtraction -fuzztime $(FUZZTIME) ./internal/dtd
	$(GO) test -run xxx -fuzz FuzzTokenizerEquivalence -fuzztime $(FUZZTIME) ./internal/dtd
	$(GO) test -run xxx -fuzz FuzzStreamEquivalence -fuzztime $(FUZZTIME) ./internal/xmltok
	$(GO) test -run xxx -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME) ./internal/sample
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/regex
